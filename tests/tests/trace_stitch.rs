//! Two-process trace stitching.
//!
//! A client in this process calls a server running in a *separate*
//! process; the server's dispatch performs a distributed upcall back
//! into the client. Each process dumps its event journal as JSON lines;
//! joining the two dumps on span ids must yield ONE trace whose tree is
//! the full causal chain:
//!
//! ```text
//! call (client)  ── wire ──▶ dispatch (server)
//!                               └─ upcall ── wire ──▶ handler (client)
//! ```
//!
//! The child server process is this same test binary re-executed with
//! `--exact child_server_process` and a role environment variable.

use clam_core::{ClamClient, ClamServer, ServerConfig, UpcallTarget};
use clam_net::Endpoint;
use clam_obs::{Event, EventKind, SpanId};
use clam_rpc::{current_conn, ProcId, RpcError, RpcResult, StatusCode, Target};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

clam_rpc::remote_interface! {
    /// One method: synchronously upcall `proc` with `x`, return the
    /// client procedure's result.
    pub interface Stitch {
        proxy StitchProxy;
        skeleton StitchSkeleton;
        class StitchClass;

        /// Bounce `x` off the client procedure `proc`.
        fn bounce(proc: ProcId, x: u32) -> u32 = 1;
    }
}

const STITCH_SERVICE_ID: u32 = 77;
const ROLE_ENV: &str = "CLAM_STITCH_ROLE";
const DIR_ENV: &str = "CLAM_STITCH_DIR";

struct StitchImpl {
    server: Weak<ClamServer>,
}

impl Stitch for StitchImpl {
    fn bounce(&self, proc: ProcId, x: u32) -> RpcResult<u32> {
        let server = self
            .server
            .upgrade()
            .ok_or_else(|| RpcError::status(StatusCode::AppError, "server gone"))?;
        let conn = current_conn()
            .ok_or_else(|| RpcError::status(StatusCode::AppError, "no connection"))?;
        let target: UpcallTarget<u32, u32> = server.upcall_target(conn, proc)?;
        target.invoke(x)
    }
}

fn poll_until<T>(what: &str, timeout: Duration, mut f: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(v) = f() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The server role, run in a child process. A no-op unless the driver
/// test set the role environment variable.
#[test]
fn child_server_process() {
    if std::env::var(ROLE_ENV).as_deref() != Ok("server") {
        return;
    }
    let dir = PathBuf::from(std::env::var(DIR_ENV).expect("stitch dir set"));

    let server = ClamServer::builder()
        .config(ServerConfig::default())
        .listen(Endpoint::tcp("127.0.0.1:0"))
        .build()
        .expect("server starts");
    let weak = Arc::downgrade(&server);
    server.rpc().register_service(
        STITCH_SERVICE_ID,
        Arc::new(StitchSkeleton::new(Arc::new(StitchImpl { server: weak }))),
    );
    let Endpoint::Tcp(addr) = &server.endpoints()[0] else {
        panic!("expected a tcp endpoint");
    };
    // Write-then-rename so the parent never reads a partial address.
    std::fs::write(dir.join("addr.tmp"), addr).expect("write addr");
    std::fs::rename(dir.join("addr.tmp"), dir.join("addr")).expect("publish addr");

    poll_until("client to finish", Duration::from_secs(60), || {
        dir.join("client_done").exists().then_some(())
    });
    clam_obs::journal()
        .dump_to_path(dir.join("server.jsonl"))
        .expect("dump server journal");
}

fn load_events(path: &Path) -> Vec<Event> {
    std::fs::read_to_string(path)
        .expect("journal file readable")
        .lines()
        .filter_map(Event::from_json_line)
        .collect()
}

/// Kill the child on panic so a failing assertion doesn't leak it.
struct ChildGuard(std::process::Child);
impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn two_processes_stitch_into_one_trace() {
    if std::env::var(ROLE_ENV).is_ok() {
        return; // never recurse inside the child
    }
    let dir = std::env::temp_dir().join(format!("clam-stitch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create stitch dir");

    let child = std::process::Command::new(std::env::current_exe().expect("own path"))
        .args(["--exact", "child_server_process", "--nocapture"])
        .env(ROLE_ENV, "server")
        .env(DIR_ENV, &dir)
        .spawn()
        .expect("spawn server process");
    let mut child = ChildGuard(child);

    let addr = poll_until("server address", Duration::from_secs(60), || {
        std::fs::read_to_string(dir.join("addr")).ok()
    });
    let client = ClamClient::connect(&Endpoint::tcp(addr)).expect("client connects");
    let proc = client.register_upcall(|x: u32| Ok(x + 1));
    let proxy = StitchProxy::new(
        Arc::clone(client.caller()),
        Target::Builtin(STITCH_SERVICE_ID),
    );

    assert_eq!(proxy.bounce(proc, 41).expect("bounce"), 42);

    clam_obs::journal()
        .dump_to_path(dir.join("client.jsonl"))
        .expect("dump client journal");
    std::fs::write(dir.join("client_done"), b"done").expect("signal client done");
    let status = child.0.wait().expect("child exits");
    assert!(status.success(), "server process failed: {status:?}");

    // ---- stitch the two journals and verify the single tree ----
    let client_events = load_events(&dir.join("client.jsonl"));
    let server_events = load_events(&dir.join("server.jsonl"));

    // The call span, from the client's own journal (method 1).
    let call_start = client_events
        .iter()
        .find(|e| e.kind == EventKind::CallStart && e.code == 1)
        .expect("client journaled the call start");
    assert_eq!(call_start.parent, SpanId::NONE, "the call is the root");
    let trace = call_start.trace;
    let call_span = call_start.span;
    assert!(
        client_events
            .iter()
            .any(|e| e.kind == EventKind::CallEnd && e.span == call_span && e.code == 0),
        "call completed successfully"
    );

    // The server dispatched under the SAME trace and span it received.
    assert!(
        server_events
            .iter()
            .any(|e| e.kind == EventKind::ServerDispatch
                && e.trace == trace
                && e.span == call_span),
        "server dispatch joined the client's span"
    );

    // The server opened the upcall span as a child of the call span…
    let sent = server_events
        .iter()
        .find(|e| e.kind == EventKind::UpcallSent && e.trace == trace)
        .expect("server journaled the upcall send");
    assert_eq!(sent.parent, call_span, "upcall hangs under the call");
    let upcall_span = sent.span;
    assert_ne!(upcall_span, call_span);

    // …and the client's handler ran under exactly that span.
    assert!(
        client_events
            .iter()
            .any(|e| e.kind == EventKind::UpcallEnter && e.trace == trace && e.span == upcall_span),
        "client handler entered the server's upcall span"
    );
    assert!(
        client_events.iter().any(|e| e.kind == EventKind::UpcallExit
            && e.trace == trace
            && e.span == upcall_span
            && e.code == 0),
        "client handler exited cleanly"
    );

    // Every event of this trace, from both processes, fits one tree
    // rooted at the call span: span → parent resolves within the set.
    let merged: Vec<&Event> = client_events
        .iter()
        .chain(&server_events)
        .filter(|e| e.trace == trace)
        .collect();
    assert!(merged.len() >= 5, "expected the full causal chain");
    for ev in &merged {
        assert!(
            ev.span == call_span || ev.span == upcall_span,
            "unexpected span {:?} in the stitched trace",
            ev.span
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
