//! Section 2.1's sweep example, end to end: sweeping in the server with
//! a single completion upcall, versus shipping every event to the client.

use clam_core::ServerConfig;
use clam_integration::{desktop_client, unique_inproc, window_server};
use clam_windows::input::sweep_script;
use clam_windows::module::Desktop;
use clam_windows::{Point, Rect};
use parking_lot::Mutex;
use std::sync::Arc;

#[test]
fn server_side_sweep_makes_exactly_one_upcall() {
    let server = window_server(unique_inproc("sweep-one"), ServerConfig::default());
    let (client, desktop) = desktop_client(&server);

    let completions = Arc::new(Mutex::new(Vec::new()));
    let c = Arc::clone(&completions);
    let on_complete = client.register_upcall(move |rect: Rect| {
        c.lock().push(rect);
        Ok(0u32)
    });
    desktop.begin_sweep(1, on_complete).unwrap();

    // A 20-step drag: 22 events cross to the server (they would all have
    // crossed to the client in the X-style placement).
    let script = sweep_script(Point::new(10, 10), Point::new(110, 80), 20);
    let mut upcalls = 0;
    for ev in script {
        upcalls += desktop.inject(ev).unwrap();
    }

    assert_eq!(upcalls, 1, "exactly one upward event: 'window created'");
    assert_eq!(*completions.lock(), vec![Rect::new(10, 10, 100, 70)]);
    assert_eq!(desktop.window_count().unwrap(), 1);
    assert_eq!(client.upcalls_handled(), 1);
}

#[test]
fn client_side_sweeping_pays_one_upcall_per_event() {
    // The X-window placement: every event crosses to the client layer.
    let server = window_server(unique_inproc("sweep-x"), ServerConfig::default());
    let (client, desktop) = desktop_client(&server);

    let moves = Arc::new(Mutex::new(0u32));
    let m = Arc::clone(&moves);
    let listener = client.register_upcall(move |_we: clam_windows::wm::WindowEvent| {
        *m.lock() += 1;
        Ok(0u32)
    });
    desktop.post_desktop(listener).unwrap();

    let script = sweep_script(Point::new(10, 10), Point::new(110, 80), 20);
    let events = script.len() as u32;
    let mut upcalls = 0;
    for ev in script {
        upcalls += desktop.inject(ev).unwrap();
    }
    assert_eq!(upcalls, events, "every event crossed the address space");
    assert_eq!(*moves.lock(), events);
    assert_eq!(client.upcalls_handled() as u32, events);
}

#[test]
fn sweep_with_grid_snapping_versionlike_option() {
    // "Clients can decide the details of window creation" — here via the
    // grid option at arm time.
    let server = window_server(unique_inproc("sweep-grid"), ServerConfig::default());
    let (client, desktop) = desktop_client(&server);
    let swept = Arc::new(Mutex::new(None));
    let s = Arc::clone(&swept);
    let on_complete = client.register_upcall(move |rect: Rect| {
        *s.lock() = Some(rect);
        Ok(0u32)
    });
    desktop.begin_sweep(16, on_complete).unwrap();
    for ev in sweep_script(Point::new(5, 5), Point::new(50, 40), 4) {
        desktop.inject(ev).unwrap();
    }
    assert_eq!(*swept.lock(), Some(Rect::new(0, 0, 64, 48)));
}

#[test]
fn rubber_band_leaves_no_residue_on_the_server_screen() {
    let server = window_server(unique_inproc("sweep-band"), ServerConfig::default());
    let (client, desktop) = desktop_client(&server);
    let on_complete = client.register_upcall(|_rect: Rect| Ok(0u32));
    desktop.begin_sweep(1, on_complete).unwrap();
    for ev in sweep_script(Point::new(20, 20), Point::new(90, 60), 10) {
        desktop.inject(ev).unwrap();
    }
    // Compare against a reference desktop where the same window is
    // created directly (no sweep): identical white-pixel counts mean the
    // rubber band XORed itself away completely. (White = band mask =
    // window background = title ink, so any residue shows up here.)
    let swept_white = desktop
        .count_pixels(clam_windows::sweep::BAND_MASK)
        .unwrap();
    let reference = clam_integration::desktop_for(&client);
    reference
        .create_window(Rect::new(20, 20, 70, 40), "swept".into())
        .unwrap();
    let reference_white = reference
        .count_pixels(clam_windows::sweep::BAND_MASK)
        .unwrap();
    assert_eq!(swept_white, reference_white, "no band residue");
}

#[test]
fn scripted_injection_batches_across_the_wire() {
    let server = window_server(unique_inproc("sweep-script"), ServerConfig::default());
    let (client, desktop) = desktop_client(&server);
    let completions = Arc::new(Mutex::new(0u32));
    let c = Arc::clone(&completions);
    let on_complete = client.register_upcall(move |_rect: Rect| {
        *c.lock() += 1;
        Ok(0u32)
    });
    desktop.begin_sweep(1, on_complete).unwrap();

    // One oneway call carries the whole gesture.
    let script = sweep_script(Point::new(0, 0), Point::new(40, 40), 8);
    desktop.inject_script(script).unwrap();
    desktop.flush().unwrap();
    // Synchronize: a sync call after the oneway drains the pipeline.
    assert_eq!(desktop.window_count().unwrap(), 1);
    assert_eq!(*completions.lock(), 1);
}
