//! Reenactment of the paper's Figure 4.1 across address spaces.
//!
//! The figure: `screen` at the bottom, `window` (BaseW) above it, `user2`
//! dynamically loaded in the server, `user1` in a client process. Mouse
//! events upcall from the screen through BaseW to whichever user layer
//! registered for the hit window — a plain procedure call for the layer
//! in the server, a distributed upcall for the layer in the client.

use clam_core::ServerConfig;
use clam_integration::{desktop_client, unique_inproc, window_server};
use clam_rpc::ProcId;
use clam_windows::module::Desktop;
use clam_windows::{InputEvent, MouseButton, Point, Rect};
use parking_lot::Mutex;
use std::sync::Arc;

#[test]
fn mouse_events_upcall_to_the_registered_client_layer() {
    let server = window_server(unique_inproc("fig41"), ServerConfig::default());
    let (client, desktop) = desktop_client(&server);

    // U1 creates W1 and registers user1::mouse (the distributed path).
    let w1 = desktop
        .create_window(Rect::new(0, 0, 100, 100), "W1".into())
        .unwrap();
    let user1_events = Arc::new(Mutex::new(Vec::new()));
    let log = Arc::clone(&user1_events);
    let user1_mouse = client.register_upcall(move |we: clam_windows::wm::WindowEvent| {
        log.lock().push(we);
        Ok(1u32)
    });
    desktop.post_input(w1, user1_mouse).unwrap();

    // The screen sees a button press inside W1; it propagates upward.
    let delivered = desktop
        .inject(InputEvent::MouseDown(Point::new(50, 50), MouseButton::Left))
        .unwrap();
    assert_eq!(delivered, 1);

    let events = user1_events.lock();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].window, w1);
    assert!(matches!(
        events[0].event,
        InputEvent::MouseDown(p, MouseButton::Left) if p == Point::new(50, 50)
    ));
}

#[test]
fn events_route_by_window_even_with_many_registrations() {
    let server = window_server(unique_inproc("fig41-routing"), ServerConfig::default());
    let (client, desktop) = desktop_client(&server);

    // Two windows; the later one overlaps on top.
    let w1 = desktop
        .create_window(Rect::new(0, 0, 60, 60), "W1".into())
        .unwrap();
    let w2 = desktop
        .create_window(Rect::new(40, 40, 60, 60), "W2".into())
        .unwrap();

    let hits = Arc::new(Mutex::new(Vec::new()));
    for w in [w1, w2] {
        let hits = Arc::clone(&hits);
        let proc = client.register_upcall(move |we: clam_windows::wm::WindowEvent| {
            hits.lock().push(we.window);
            Ok(0u32)
        });
        desktop.post_input(w, proc).unwrap();
    }

    // Overlap region → W2 (topmost). Exclusive region → W1.
    desktop
        .inject(InputEvent::MouseMove(Point::new(50, 50)))
        .unwrap();
    desktop
        .inject(InputEvent::MouseMove(Point::new(10, 10)))
        .unwrap();
    assert_eq!(*hits.lock(), vec![w2, w1]);
}

#[test]
fn click_to_focus_raises_across_the_wire() {
    let server = window_server(unique_inproc("fig41-focus"), ServerConfig::default());
    let (client, desktop) = desktop_client(&server);
    let w1 = desktop
        .create_window(Rect::new(0, 0, 60, 60), "W1".into())
        .unwrap();
    let w2 = desktop
        .create_window(Rect::new(40, 40, 60, 60), "W2".into())
        .unwrap();
    let _ = w2;
    // Register a listener so the click is delivered, then click in W1's
    // exclusive region.
    let proc = client.register_upcall(|_we: clam_windows::wm::WindowEvent| Ok(0u32));
    desktop.post_input(w1, proc).unwrap();
    desktop
        .inject(InputEvent::MouseDown(Point::new(10, 10), MouseButton::Left))
        .unwrap();
    // W1 is now on top: the overlap point hits it.
    let probe = client.register_upcall(|_we: clam_windows::wm::WindowEvent| Ok(0u32));
    desktop.post_input(w1, probe).unwrap();
    let delivered = desktop
        .inject(InputEvent::MouseMove(Point::new(50, 50)))
        .unwrap();
    assert_eq!(delivered, 2, "both W1 registrations fired at the overlap");
}

#[test]
fn unregistered_events_queue_in_the_lower_layer() {
    // Section 4.1: no interested layer → the lower layer queues.
    let server = window_server(unique_inproc("fig41-queue"), ServerConfig::default());
    let (_client, desktop) = desktop_client(&server);
    desktop
        .create_window(Rect::new(0, 0, 50, 50), "W".into())
        .unwrap();
    desktop
        .inject(InputEvent::MouseMove(Point::new(25, 25)))
        .unwrap();
    desktop.inject(InputEvent::Key(65)).unwrap();
    let unclaimed = desktop.take_unclaimed().unwrap();
    assert_eq!(unclaimed.len(), 2);
    assert!(desktop.take_unclaimed().unwrap().is_empty());
}

#[test]
fn two_client_processes_each_get_their_windows_events() {
    let server = window_server(unique_inproc("fig41-two"), ServerConfig::default());
    let (client_a, desktop) = desktop_client(&server);
    // Client B shares the SAME desktop object: pass the handle over. In
    // this test B simply creates its own desktop-level registration on
    // its own desktop instance instead — each desktop is per-client
    // state, which is the paper's "different clients could have
    // different versions" isolation.
    let (client_b, desktop_b) = desktop_client(&server);

    let wa = desktop
        .create_window(Rect::new(0, 0, 50, 50), "A".into())
        .unwrap();
    let wb = desktop_b
        .create_window(Rect::new(0, 0, 50, 50), "B".into())
        .unwrap();

    let a_count = Arc::new(Mutex::new(0u32));
    let b_count = Arc::new(Mutex::new(0u32));
    let ac = Arc::clone(&a_count);
    let pa = client_a.register_upcall(move |_we: clam_windows::wm::WindowEvent| {
        *ac.lock() += 1;
        Ok(0u32)
    });
    let bc = Arc::clone(&b_count);
    let pb = client_b.register_upcall(move |_we: clam_windows::wm::WindowEvent| {
        *bc.lock() += 1;
        Ok(0u32)
    });
    desktop.post_input(wa, pa).unwrap();
    desktop_b.post_input(wb, pb).unwrap();

    desktop
        .inject(InputEvent::MouseMove(Point::new(10, 10)))
        .unwrap();
    desktop_b
        .inject(InputEvent::MouseMove(Point::new(10, 10)))
        .unwrap();
    desktop_b
        .inject(InputEvent::MouseMove(Point::new(12, 12)))
        .unwrap();

    assert_eq!(*a_count.lock(), 1);
    assert_eq!(*b_count.lock(), 2);
}

#[test]
fn null_proc_registration_is_rejected() {
    let server = window_server(unique_inproc("fig41-null"), ServerConfig::default());
    let (_client, desktop) = desktop_client(&server);
    let w = desktop
        .create_window(Rect::new(0, 0, 50, 50), "W".into())
        .unwrap();
    let err = desktop.post_input(w, ProcId::NULL).unwrap_err();
    assert!(err.to_string().contains("null procedure"));
}

#[test]
fn deregistration_stops_upcalls_over_the_wire() {
    let server = window_server(unique_inproc("fig41-dereg"), ServerConfig::default());
    let (client, desktop) = desktop_client(&server);
    let w = desktop
        .create_window(Rect::new(0, 0, 50, 50), "W".into())
        .unwrap();
    let count = Arc::new(Mutex::new(0u32));
    let c = Arc::clone(&count);
    let proc = client.register_upcall(move |_we: clam_windows::wm::WindowEvent| {
        *c.lock() += 1;
        Ok(0u32)
    });
    let registration = desktop.post_input(w, proc).unwrap();

    desktop
        .inject(InputEvent::MouseMove(Point::new(10, 10)))
        .unwrap();
    assert_eq!(*count.lock(), 1);

    assert!(desktop.remove_input(w, registration).unwrap());
    assert!(!desktop.remove_input(w, registration).unwrap());
    desktop
        .inject(InputEvent::MouseMove(Point::new(11, 11)))
        .unwrap();
    assert_eq!(*count.lock(), 1, "no upcalls after deregistration");
    // With no listeners the event falls into the queue (section 4.1).
    assert_eq!(desktop.take_unclaimed().unwrap().len(), 1);
}

#[test]
fn window_move_by_dragging_makes_one_upcall() {
    // Dragging, like sweeping, is interaction code living in the server
    // (section 2.1's "smooth visual effect"): the moves are consumed
    // there; one "window moved" upcall crosses at the end.
    let server = window_server(unique_inproc("fig41-drag"), ServerConfig::default());
    let (client, desktop) = desktop_client(&server);
    let w = desktop
        .create_window(Rect::new(10, 10, 40, 30), "W".into())
        .unwrap();

    let moves = Arc::new(Mutex::new(Vec::new()));
    let m = Arc::clone(&moves);
    let on_complete = client.register_upcall(move |mv: clam_windows::WindowMoved| {
        m.lock().push(mv);
        Ok(0u32)
    });
    desktop.begin_move(w, on_complete).unwrap();

    let mut upcalls = 0;
    for ev in clam_windows::input::sweep_script(Point::new(20, 20), Point::new(70, 60), 8) {
        upcalls += desktop.inject(ev).unwrap();
    }
    assert_eq!(upcalls, 1, "one 'window moved' upcall per gesture");
    let moves = moves.lock();
    assert_eq!(moves.len(), 1);
    assert_eq!(moves[0].window, w);
    assert_eq!(moves[0].from, Rect::new(10, 10, 40, 30));
    assert_eq!(moves[0].to, Rect::new(60, 50, 40, 30));
    assert_eq!(desktop.window_frame(w).unwrap(), Rect::new(60, 50, 40, 30));
}
