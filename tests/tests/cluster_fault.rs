//! Fault injection on the *inter-server* link: the client↔node leg is
//! clean, but every frame between the two servers runs through a seeded
//! [`FaultPlan`]. Forwarded calls must complete at most once — the
//! server-side dedup window absorbs duplicated frames — and fail
//! cleanly (deadline, not hang) when the link eats a frame.

use clam_cluster::demo::{self, Counter, CounterProxy};
use clam_cluster::{ClusterConfig, ClusterNode};
use clam_core::{ClamClient, NameService, NameServiceProxy, ServerConfig, NAME_SERVICE_ID};
use clam_net::{Endpoint, FaultPlan, FaultyConnector};
use clam_rpc::{CallerConfig, Target};
use std::time::Duration;

/// Server tuning with a short forwarded-call deadline so a lost frame
/// on the inter-server link surfaces as a clean, fast failure.
fn tuned() -> ServerConfig {
    ServerConfig {
        caller: CallerConfig {
            call_timeout: Some(Duration::from_millis(400)),
            ..CallerConfig::default()
        },
        ..ServerConfig::default()
    }
}

/// Two nodes; node A's outbound (inter-server) links run through
/// `plan`. The client talks to A over a clean transport.
fn lossy_pair(tag: &str, plan: FaultPlan) -> (ClusterNode, ClusterNode) {
    let ep = |host: &str| Endpoint::in_proc(format!("cfault-{tag}-{host}"));
    let a = ClusterNode::start(
        ClusterConfig::new(1, ep("a"))
            .server(tuned())
            .connector(FaultyConnector::direct(plan)),
    )
    .expect("seed starts");
    let b = ClusterNode::start(
        ClusterConfig::new(2, ep("b"))
            .seed(a.endpoint().clone())
            .server(tuned()),
    )
    .expect("node b joins");
    (a, b)
}

#[test]
fn forwarding_over_a_lossy_link_never_double_executes() {
    // Drops, delays, duplicates, and truncations — seeded, so the run
    // is reproducible.
    let plan = FaultPlan::seeded(0xC1A5_7E57)
        .drop_frames(0.05)
        .delay_frames(0.25, Duration::from_millis(10))
        .duplicate_frames(0.10)
        .truncate_frames(0.03);
    let (a, b) = lossy_pair("soak", plan);
    demo::install(&b).expect("counter on b");

    // A plain client of node A; every counter call must be forwarded
    // over the faulty A→B link.
    let client = ClamClient::connect(a.endpoint()).expect("client connects");
    let names = NameServiceProxy::new(
        std::sync::Arc::clone(client.caller()),
        Target::Builtin(NAME_SERVICE_ID),
    );
    let handle = names
        .lookup(demo::counter_name(2))
        .expect("lookup through a");
    assert_eq!(handle.home, 2, "the counter is homed on the far node");
    let proxy = CounterProxy::new(
        std::sync::Arc::clone(client.caller()),
        Target::Object(handle),
    );

    const ATTEMPTS: u32 = 60;
    let mut ok = 0u64;
    let mut last = 0u64;
    for _ in 0..ATTEMPTS {
        // A failure is clean: lost frame, deadline, or torn link.
        if let Ok(v) = proxy.incr(1) {
            assert!(v > last, "counter moves forward, {v} after {last}");
            last = v;
            ok += 1;
        }
    }

    // Read the authoritative value over a clean, direct connection.
    let direct = ClamClient::connect(b.endpoint()).expect("direct connect");
    let truth = CounterProxy::new(
        std::sync::Arc::clone(direct.caller()),
        Target::Object(handle),
    )
    .get()
    .expect("direct get");

    // At-most-once: every acknowledged call executed exactly once
    // (duplicated frames were absorbed by the dedup window), every
    // unacknowledged call executed at most once (its reply was lost).
    assert!(ok > 0, "the soak made progress");
    assert!(
        truth >= ok,
        "every acknowledged incr landed: counter {truth} < acks {ok}"
    );
    assert!(
        truth <= u64::from(ATTEMPTS),
        "no incr ran twice: counter {truth} > attempts {ATTEMPTS}"
    );
}

#[test]
fn a_partitioned_link_fails_fast_and_reconnects() {
    // The link works long enough to handshake and serve a few frames,
    // then silently eats everything (no error, no close — the worst
    // failure mode for a forwarder).
    let plan = FaultPlan::seeded(7).partition_after(4);
    let (a, b) = lossy_pair("part", plan);
    demo::install(&b).expect("counter on b");

    let client = ClamClient::connect(a.endpoint()).expect("client connects");
    let names = NameServiceProxy::new(
        std::sync::Arc::clone(client.caller()),
        Target::Builtin(NAME_SERVICE_ID),
    );
    let handle = names
        .lookup(demo::counter_name(2))
        .expect("lookup through a");
    let proxy = CounterProxy::new(
        std::sync::Arc::clone(client.caller()),
        Target::Object(handle),
    );

    let mut outcomes = Vec::new();
    for _ in 0..10 {
        let t0 = std::time::Instant::now();
        let res = proxy.incr(1);
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "forwarded calls fail fast, not hang"
        );
        outcomes.push(res.is_ok());
    }
    // The partition bit at some point…
    assert!(outcomes.contains(&false), "the partition was felt");
    // …and because the node evicts a deadlined link and reconnects (a
    // fresh channel, whose fault counters restart), service recovered.
    assert!(
        outcomes.iter().skip_while(|ok| **ok).any(|ok| *ok),
        "a call succeeded after the first failure: {outcomes:?}"
    );
}
